// Command prasim runs workloads on one DRAM scheme and prints the
// measured statistics: performance, row-buffer behaviour, activation
// granularity, and the DRAM power/energy breakdown.
//
// Usage:
//
//	prasim -workload GUPS -scheme pra
//	prasim -workload MIX2 -scheme halfdram+pra -policy restricted
//	prasim -workload libquantum -scheme baseline -instr 2000000 -dbi
//	prasim -workload GUPS,em3d,MIX2 -j 3       # parallel fan-out
//	prasim -mix gups:2,linkedlist:2 -scheme pra  # custom SPEC-rate co-run
//
// -workload accepts a comma-separated list; the runs execute across a
// -j-sized worker pool and the reports print in the order given, so the
// output is identical for every -j (each run is deterministic and
// independent). With -json, one JSON document is emitted per workload.
// -mix runs one custom multi-program co-run instead: a name[:count],...
// spec over any single-core workloads (benchmarks, hammers, tensor
// streams) whose counts sum to -cores, with per-core attribution in the
// report.
//
// -ckpt-dir persists warmup checkpoints (DESIGN.md §4e): a later
// invocation whose configuration shares a warmup fingerprint restores the
// snapshot instead of re-warming, with bit-identical results.
//
// Parallel-in-time ticking (DESIGN.md §4i): on multi-channel
// configurations the memory controller can tick its channel partitions
// concurrently, bit-identical to the sequential loop. By default the
// worker-share count is chosen automatically so the two parallelism
// levels compose — -j batch workers multiplied by per-run channel
// workers never oversubscribe GOMAXPROCS (a batch that saturates the
// machine runs each simulation sequentially). -par N forces N shares,
// -seq forces sequential ticking; results are identical either way.
//
// Telemetry (see internal/obs and DESIGN.md "Observability"):
//
//	prasim -workload gups -timeline tl.csv -epoch 50000
//	prasim -workload GUPS -events state -events-out ev.log
//	prasim -workload GUPS,em3d -j 2 -timeline tl.csv -http :6060
//
// -timeline samples per-epoch counters (per-bank ACT/PRE/RD/WR, activation
// granularity histogram, queue depths, energy components, ...) into a CSV
// (or JSON when the file ends in .json); in a batch the workload name is
// inserted before the extension. -events records a ring-buffered trace of
// state transitions (state) or every DRAM command (cmd), written to
// -events-out and dumped to stderr when a run fails. -http serves the live
// recorder, batch progress, the build/version block (/vars/build), and
// net/http/pprof while the runs execute.
//
// Latency attribution (DESIGN.md §4h):
//
//	prasim -workload GUPS -scheme pra -latbreak
//	prasim -workload GUPS -latbreak -json
//	prasim -workload GUPS -trace-out trace.json -events state
//
// -latbreak decomposes every request's arrival-to-data latency into
// queue/bank/timing/refresh/pd/alert/xfer components (a shares table and
// tail percentiles join the report; simulated results are identical).
// -trace-out additionally samples every -trace-sample-th completed request
// into a Chrome/Perfetto trace (open in ui.perfetto.dev), one track per
// bank, with the breakdown as span arguments; when -events is at least
// "state" the controller's refresh/power-down/alert instants ride along.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pradram"
	"pradram/internal/obs"
	"pradram/internal/power"
	"pradram/internal/stats"
)

func main() {
	var (
		workloadName = flag.String("workload", "GUPS", "benchmark or MIXn (comma-separated for a batch; see -list)")
		mixSpec      = flag.String("mix", "", "run one custom co-run spec name[:count],... (e.g. gups:2,linkedlist:2); counts must sum to -cores")
		schemeName   = flag.String("scheme", "baseline", "baseline | fga | halfdram | pra | halfdram+pra")
		policyName   = flag.String("policy", "relaxed", "relaxed | restricted")
		dbi          = flag.Bool("dbi", false, "enable Dirty-Block-Index proactive writeback")
		instr        = flag.Int64("instr", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 400_000, "warmup instructions per core")
		cores        = flag.Int("cores", 4, "active cores")
		seed         = flag.Uint64("seed", 1, "workload seed")
		list         = flag.Bool("list", false, "list workloads and exit")
		asJSON       = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		ecc          = flag.Bool("ecc", false, "model an x72 ECC DIMM (Section 4.2)")
		workers      = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations in flight for workload batches")
		noskip       = flag.Bool("noskip", false, "disable event-driven cycle skipping (tick every CPU cycle; results are identical, runs are slower)")
		par          = flag.Int("par", -1, "worker shares for parallel-in-time channel ticking (results are identical; -1 = auto-size against -j, 0 = sequential)")
		seq          = flag.Bool("seq", false, "force sequential channel ticking (same as -par 0)")
		channels     = flag.Int("channels", 0, "memory channels, power of two (0 = controller default; changes address decomposition, hence results)")
		ckptDir      = flag.String("ckpt-dir", "", "persist warmup checkpoints in this directory and restore matching ones instead of re-warming (results are identical)")

		pdPolicy  = flag.String("pd-policy", "immediate", "power-down entry policy: immediate | none | timeout | queue")
		pdTimeout = flag.Int64("pd-timeout", 200, "idle memory cycles before power-down entry (timeout/queue policies)")
		srTimeout = flag.Int64("sr-timeout", 0, "idle memory cycles before self-refresh entry (0 = never)")
		pdSlow    = flag.Bool("pd-slow", false, "use slow-exit (DLL-off) precharge power-down: lower IDD2P, tXPDLL exit")
		apd       = flag.Bool("apd", false, "allow active power-down (CKE low with banks open) under the relaxed-close policy")
		refMode   = flag.String("refresh-mode", "allbank", "refresh management: allbank | perbank | elastic")

		mitThreshold = flag.Int("mit-threshold", 0, "RowHammer Alert/RFM mitigation: per-row activation threshold (0 = off)")
		mitAlert     = flag.Int64("mit-alert", 0, "alert back-off in memory cycles before the RFM issues (0 = default 144)")
		mitTable     = flag.Int("mit-table", 0, "per-bank activation-counter table capacity (0 = default 512)")

		powerCal = flag.String("power-cal", "", "report calibrated energy bands: none | vendor | ghose[:pct] (empty = nominal only)")

		latBreak    = flag.Bool("latbreak", false, "attribute per-request latency to components (queue/bank/timing/refresh/pd/alert/xfer) and report the breakdown and tail percentiles (results are identical)")
		traceOut    = flag.String("trace-out", "", "write sampled request spans as a Chrome/Perfetto trace JSON to this file (implies -latbreak)")
		traceSample = flag.Int("trace-sample", 64, "with -trace-out, sample every Nth completed request into the span ring")

		epoch     = flag.Int64("epoch", 100_000, "telemetry sampling epoch in DRAM cycles (used with -timeline / -http)")
		timeline  = flag.String("timeline", "", "write the per-epoch time-series to this file (.json for JSON, else CSV)")
		eventsLvl = flag.String("events", "off", "structured event trace: off | state | cmd")
		eventsOut = flag.String("events-out", "", "write the event trace to this file (otherwise dumped to stderr only on error)")
		httpAddr  = flag.String("http", "", "serve live telemetry JSON and pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", pradram.Workloads())
		fmt.Println("hammers:   ", pradram.Hammers())
		fmt.Println("tensors:   ", pradram.Tensors())
		fmt.Println("mixes:     ", pradram.Mixes())
		fmt.Println("co-runs:    any single-core names as name[:count],... via -mix")
		return
	}

	scheme, err := pradram.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	policy, err := pradram.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	pd, err := pradram.ParsePDPolicy(*pdPolicy)
	if err != nil {
		fatal(err)
	}
	rm, err := pradram.ParseRefreshMode(*refMode)
	if err != nil {
		fatal(err)
	}
	level, err := obs.ParseLevel(*eventsLvl)
	if err != nil {
		fatal(err)
	}
	obsCfg := pradram.ObsConfig{EventLevel: level}
	if *timeline != "" || *httpAddr != "" {
		obsCfg.EpochCycles = *epoch
	}

	names := strings.Split(*workloadName, ",")
	if *mixSpec != "" {
		// A co-run spec contains commas itself, so it cannot ride the
		// comma-separated batch list; -mix submits the whole spec as one
		// multi-program run instead.
		names = []string{*mixSpec}
	}

	// Resolve the worker-share count for parallel-in-time ticking. The
	// automatic choice budgets against the *effective* outer parallelism:
	// a single run next to an idle -j pool still gets every core.
	shares := *par
	if *seq {
		shares = 0
	} else if shares < 0 {
		outer := *workers
		if outer > len(names) {
			outer = len(names)
		}
		shares = pradram.AutoPar(outer)
	}

	systems := make([]*pradram.System, len(names))
	cfgs := make([]pradram.Config, len(names))
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		cfg := pradram.DefaultConfig(names[i])
		cfg.Scheme = scheme
		cfg.Policy = policy
		cfg.DBI = *dbi
		cfg.ECC = *ecc
		cfg.InstrPerCore = *instr
		cfg.WarmupPerCore = *warmup
		cfg.ActiveCores = *cores
		cfg.Seed = *seed
		cfg.NoSkip = *noskip
		cfg.Par = shares
		cfg.Channels = *channels
		cfg.PDPolicy = pd
		cfg.PDTimeout = *pdTimeout
		cfg.SRTimeout = *srTimeout
		cfg.PDSlowExit = *pdSlow
		cfg.APD = *apd
		cfg.RefreshMode = rm
		cfg.MitThreshold = *mitThreshold
		cfg.MitAlertCycles = *mitAlert
		cfg.MitTableCap = *mitTable
		cfg.PowerCal = *powerCal
		cfg.Obs = obsCfg
		cfg.LatBreak = *latBreak || *traceOut != ""
		if *traceOut != "" {
			cfg.LatSpanEvery = *traceSample
		}
		cfgs[i] = cfg
		if systems[i], err = pradram.NewSystem(cfg); err != nil {
			fatal(err)
		}
	}
	batch := len(systems) > 1

	prog := obs.NewProgress()
	prog.AddTotal(int64(len(systems)))
	stopReporter := func() {}
	if batch {
		stopReporter = prog.Reporter(os.Stderr, time.Second, "prasim")
	}
	if *httpAddr != "" {
		srv := obs.NewServer()
		srv.Publish("build", func() any { return pradram.BuildInfo() })
		srv.Publish("progress", func() any { return prog.Snapshot() })
		for i := range systems {
			s, label := systems[i], names[i]
			if batch {
				label = fmt.Sprintf("%d-%s", i, label)
			}
			if rec := s.Recorder(); rec != nil {
				srv.Publish("timeline/"+label, func() any { return rec.Snapshot() })
			}
		}
		go func() {
			if err := srv.ListenAndServe(*httpAddr); err != nil {
				fmt.Fprintln(os.Stderr, "prasim: http:", err)
			}
		}()
	}

	var store *pradram.CheckpointStore
	if *ckptDir != "" {
		store = pradram.NewCheckpointStore(*ckptDir)
	}
	var ckptHits, ckptCold atomic.Int64

	// Fan the independent runs out across the pool; reports still print
	// in the order the workloads were given.
	results := make([]pradram.Result, len(systems))
	errs := make([]error, len(systems))
	pool := *workers
	if pool < 1 {
		pool = 1
	}
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prog.Start()
			defer prog.Done()
			results[i], errs[i] = runSystem(systems[i], cfgs[i], store, &ckptHits, &ckptCold)
		}(i)
	}
	wg.Wait()
	stopReporter()
	if store != nil {
		fmt.Fprintf(os.Stderr, "(warmup checkpoints: %d restored, %d cold)\n",
			ckptHits.Load(), ckptCold.Load())
	}

	for i, res := range results {
		if errs[i] != nil {
			// A failed run's event ring is the post-mortem: dump it
			// before exiting.
			if ev := systems[i].Events(); ev != nil {
				ev.Dump(os.Stderr)
			}
			fatal(errs[i])
		}
		if err := dumpTelemetry(systems[i], names[i], *timeline, *eventsOut, batch); err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			if err := writeTrace(systems[i], names[i], *traceOut, batch); err != nil {
				fatal(err)
			}
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, res); err != nil {
				fatal(err)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		report(os.Stdout, res)
	}
}

// runSystem executes one run, restoring a persisted warmup checkpoint
// (-ckpt-dir) when the store holds a snapshot matching the configuration's
// warmup fingerprint. System.Restore validates every byte and leaves the
// system pristine on rejection, so every failure path falls back to the
// ordinary monolithic run: the store changes wall-clock, never results.
func runSystem(s *pradram.System, cfg pradram.Config, store *pradram.CheckpointStore, hits, cold *atomic.Int64) (pradram.Result, error) {
	fp, ok := pradram.WarmupFingerprint(cfg)
	if store == nil || !ok {
		return s.Run()
	}
	if data, ok := store.Load(fp); ok {
		if err := s.Restore(data); err == nil {
			hits.Add(1)
			return s.Measure()
		}
		store.Remove(fp)
	}
	cold.Add(1)
	if err := s.Warmup(); err != nil {
		return pradram.Result{}, err
	}
	if data, err := s.Checkpoint(); err == nil {
		// A failed store only costs a future re-warmup.
		_ = store.Store(fp, data)
	}
	return s.Measure()
}

// batchPath inserts the run label before the path's extension when several
// runs share one -timeline/-events-out flag ("tl.csv" -> "tl.GUPS.csv").
func batchPath(path, label string, batch bool) string {
	if !batch {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + label + ext
}

// dumpTelemetry writes a finished run's recorder and event log to the
// requested files.
func dumpTelemetry(s *pradram.System, label, timeline, eventsOut string, batch bool) error {
	if timeline != "" {
		if rec := s.Recorder(); rec != nil {
			path := batchPath(timeline, label, batch)
			if err := writeTo(path, func(w io.Writer) error {
				if strings.HasSuffix(path, ".json") {
					return rec.WriteJSON(w)
				}
				return rec.WriteCSV(w)
			}); err != nil {
				return err
			}
		}
	}
	if eventsOut != "" && s.Events() != nil {
		if err := writeTo(batchPath(eventsOut, label, batch), s.Events().Dump); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace exports a finished run's sampled request spans (-trace-out)
// as a Chrome/Perfetto trace: one track per DRAM bank carrying the
// sampled read/write lifetimes with their component breakdowns as span
// arguments, plus an instant track with the controller's episodic state
// events (refresh, power-down, alert, ...) when -events captured them.
// Spans are a sample (every -trace-sample-th completion, ring-buffered),
// not a census.
func writeTrace(s *pradram.System, label, path string, batch bool) error {
	spans := s.LatSpans()
	tspans := make([]obs.TraceSpan, len(spans))
	for i, sp := range spans {
		args := make(map[string]int64, int(pradram.NumLatComponents))
		for c := pradram.LatComponent(0); c < pradram.NumLatComponents; c++ {
			if sp.Break[c] != 0 {
				args[c.String()] = sp.Break[c]
			}
		}
		tspans[i] = obs.TraceSpan{
			Name:  sp.Kind.String(),
			Track: fmt.Sprintf("ch%d.r%d.b%d", sp.Loc.Channel, sp.Loc.Rank, sp.Loc.Bank),
			Start: sp.Arrive,
			End:   sp.Done,
			Args:  args,
		}
	}
	// The controller's state-level events share the spans' memory clock;
	// the episodic ones explain gaps between spans, so they ride along.
	var instants []obs.Event
	if ev := s.Events(); ev != nil {
		for _, e := range ev.Events() {
			if !strings.HasPrefix(e.Scope, "memctrl.") {
				continue
			}
			switch e.Kind {
			case "refresh", "power-down", "self-refresh", "alert", "rfm", "wake":
				instants = append(instants, e)
			}
		}
	}
	opt := obs.ChromeTraceOptions{
		Process:      "prasim " + label,
		CycleNs:      pradram.MemCycleNs,
		InstantTrack: "dram",
	}
	return writeTo(batchPath(path, label, batch), func(w io.Writer) error {
		return obs.WriteChromeTrace(w, opt, tspans, instants)
	})
}

// writeTo creates path and streams fn's output into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// report renders the human-readable tables for one run.
func report(w io.Writer, res pradram.Result) {
	fmt.Fprintf(w, "workload %s  scheme %s  policy %s  dbi %v\n", res.Workload, res.Scheme, res.Policy, res.DBI)
	fmt.Fprintf(w, "apps: %v\n\n", res.Apps)

	perf := stats.NewTable("core", "app", "IPC")
	for i, ipc := range res.CoreIPC {
		perf.Row(i, res.Apps[i], ipc)
	}
	fmt.Fprintln(w, perf.String())

	fmt.Fprintf(w, "cycles %d  runtime %.1f us  sum-IPC %.3f\n\n", res.Cycles, res.RuntimeNs()/1000, res.SumIPC())

	mem := stats.NewTable("metric", "value")
	mem.Row("DRAM reads", res.Ctrl.ReadsServed)
	mem.Row("DRAM writes", res.Ctrl.WritesServed)
	mem.Row("row hit rate (read)", fmt.Sprintf("%.1f%%", 100*res.RowHitRateRead()))
	mem.Row("row hit rate (write)", fmt.Sprintf("%.1f%%", 100*res.RowHitRateWrite()))
	mem.Row("false hits (read)", fmt.Sprintf("%.2f%%", 100*res.FalseHitRateRead()))
	mem.Row("false hits (write)", fmt.Sprintf("%.2f%%", 100*res.FalseHitRateWrite()))
	mem.Row("avg read latency", fmt.Sprintf("%.1f ns", res.AvgReadLatencyNs()))
	mem.Row("avg write latency", fmt.Sprintf("%.1f ns", res.AvgWriteLatencyNs()))
	mem.Row("activations", res.Dev.Activations())
	mem.Row("avg act granularity", fmt.Sprintf("%.2f/8", res.Dev.AvgGranularity()))
	mem.Row("write words on bus", fmt.Sprintf("%d of %d", res.Dev.WordsWritten, res.Dev.WordBudget))
	mem.Row("refreshes", res.Dev.Refreshes)
	if res.Dev.PerBankRefreshes > 0 {
		mem.Row("per-bank refreshes", res.Dev.PerBankRefreshes)
	}
	if res.Dev.PostponedRefreshes > 0 || res.Dev.PulledInRefreshes > 0 {
		mem.Row("postponed/pulled-in", fmt.Sprintf("%d/%d", res.Dev.PostponedRefreshes, res.Dev.PulledInRefreshes))
	}
	if res.Ctrl.Alerts > 0 || res.Dev.RFMs > 0 {
		mem.Row("mitigation alerts", res.Ctrl.Alerts)
		mem.Row("RFM commands", res.Dev.RFMs)
		mem.Row("alert stall cycles", res.Ctrl.AlertStallCycles)
		if res.Dev.RowSpills > 0 {
			mem.Row("counter-table spills", res.Dev.RowSpills)
		}
	}
	mem.Row("low-power residency", fmt.Sprintf("%.1f%%", 100*res.LowPowerResidency()))
	if res.Dev.SelfRefEntries > 0 {
		mem.Row("self-refresh residency", fmt.Sprintf("%.1f%%", 100*res.SelfRefreshResidency()))
	}
	fmt.Fprintln(w, mem.String())

	// The latency-attribution tables only exist when -latbreak (or
	// -trace-out) ran the accounting; the histogram count is the witness.
	if res.Ctrl.ReadLatHist.N > 0 || res.Ctrl.WriteLatHist.N > 0 {
		lat := stats.NewTable("latency component", "read", "write")
		for c := pradram.LatComponent(0); c < pradram.NumLatComponents; c++ {
			lat.Row(c.String(),
				fmt.Sprintf("%.1f%%", 100*res.ReadLatShare(c)),
				fmt.Sprintf("%.1f%%", 100*res.WriteLatShare(c)))
		}
		fmt.Fprintln(w, lat.String())
		fmt.Fprintf(w, "read latency p50/p95/p99/p99.9: %.0f / %.0f / %.0f / %.0f ns   write p50/p99: %.0f / %.0f ns\n\n",
			res.ReadLatQuantileNs(0.50), res.ReadLatQuantileNs(0.95),
			res.ReadLatQuantileNs(0.99), res.ReadLatQuantileNs(0.999),
			res.WriteLatQuantileNs(0.50), res.WriteLatQuantileNs(0.99))
	}

	gran := stats.NewTable("granularity", "share")
	for g := 1; g <= 8; g++ {
		gran.Row(fmt.Sprintf("%d/8", g), fmt.Sprintf("%.2f%%", 100*res.GranularityShare(g)))
	}
	fmt.Fprintln(w, gran.String())

	pw := stats.NewTable("component", "energy uJ", "share")
	tot := res.Energy.Total()
	for c := power.Component(0); c < power.NumComponents; c++ {
		pw.Row(c.String(), res.Energy[c]/1e6, fmt.Sprintf("%.1f%%", 100*stats.Ratio(res.Energy[c], tot)))
	}
	pw.Row("TOTAL", tot/1e6, "100%")
	fmt.Fprintln(w, pw.String())
	fmt.Fprintf(w, "avg DRAM power %.1f mW   EDP %.3g pJ*ns\n", res.AvgPowerMW(), res.EDP())
	if band := res.PowerBandMW(); res.Cal.Name != "" && res.Cal.Name != "none" {
		fmt.Fprintf(w, "calibrated power band (%s): %.1f / %.1f / %.1f mW (min/nom/max, %.1f%% spread)\n",
			res.Cal.Name, band.Min, band.Nom, band.Max, 100*band.Spread())
	}
}

// jsonReport is the machine-readable output shape of -json.
type jsonReport struct {
	Workload string    `json:"workload"`
	Scheme   string    `json:"scheme"`
	Policy   string    `json:"policy"`
	DBI      bool      `json:"dbi"`
	Apps     []string  `json:"apps"`
	Cycles   int64     `json:"cycles"`
	CoreIPC  []float64 `json:"core_ipc"`
	SumIPC   float64   `json:"sum_ipc"`

	Reads         int64   `json:"dram_reads"`
	Writes        int64   `json:"dram_writes"`
	RowHitRead    float64 `json:"row_hit_read"`
	RowHitWrite   float64 `json:"row_hit_write"`
	FalseHitRead  float64 `json:"false_hit_read"`
	FalseHitWrite float64 `json:"false_hit_write"`
	AvgReadNs     float64 `json:"avg_read_latency_ns"`
	AvgWriteNs    float64 `json:"avg_write_latency_ns"`

	// Latency attribution (-latbreak); omitted when the run did not carry
	// the accounting. Shares are fractions of the total latency of the
	// request kind; percentiles are log-bucket upper bounds in ns.
	ReadLatShares  map[string]float64 `json:"read_lat_shares,omitempty"`
	WriteLatShares map[string]float64 `json:"write_lat_shares,omitempty"`
	ReadLatPctNs   map[string]float64 `json:"read_lat_percentiles_ns,omitempty"`
	WriteLatPctNs  map[string]float64 `json:"write_lat_percentiles_ns,omitempty"`

	Activations    int64     `json:"activations"`
	AvgGranularity float64   `json:"avg_act_granularity"`
	GranShares     []float64 `json:"act_granularity_shares"`

	EnergyPJ   map[string]float64 `json:"energy_pj"`
	AvgPowerMW float64            `json:"avg_power_mw"`
	EDP        float64            `json:"edp_pj_ns"`

	Refreshes          int64   `json:"refreshes"`
	PerBankRefreshes   int64   `json:"perbank_refreshes,omitempty"`
	PostponedRefreshes int64   `json:"postponed_refreshes,omitempty"`
	PulledInRefreshes  int64   `json:"pulledin_refreshes,omitempty"`
	LowPowerResidency  float64 `json:"low_power_residency"`
	SelfRefResidency   float64 `json:"selfref_residency"`

	Alerts           int64 `json:"alerts,omitempty"`
	AlertStallCycles int64 `json:"alert_stall_cycles,omitempty"`
	RFMs             int64 `json:"rfms,omitempty"`
	RowSpills        int64 `json:"row_spills,omitempty"`

	PowerCal    string      `json:"power_cal,omitempty"`
	PowerBandMW *[3]float64 `json:"power_band_mw,omitempty"` // min, nominal, max
}

func emitJSON(w io.Writer, res pradram.Result) error {
	rep := jsonReport{
		Workload: res.Workload,
		Scheme:   res.Scheme.String(),
		Policy:   res.Policy.String(),
		DBI:      res.DBI,
		Apps:     res.Apps,
		Cycles:   res.Cycles,
		CoreIPC:  res.CoreIPC,
		SumIPC:   res.SumIPC(),

		Reads:         res.Ctrl.ReadsServed,
		Writes:        res.Ctrl.WritesServed,
		RowHitRead:    res.RowHitRateRead(),
		RowHitWrite:   res.RowHitRateWrite(),
		FalseHitRead:  res.FalseHitRateRead(),
		FalseHitWrite: res.FalseHitRateWrite(),
		AvgReadNs:     res.AvgReadLatencyNs(),
		AvgWriteNs:    res.AvgWriteLatencyNs(),

		Activations:    res.Dev.Activations(),
		AvgGranularity: res.Dev.AvgGranularity(),

		EnergyPJ:   make(map[string]float64, int(power.NumComponents)),
		AvgPowerMW: res.AvgPowerMW(),
		EDP:        res.EDP(),

		Refreshes:          res.Dev.Refreshes,
		PerBankRefreshes:   res.Dev.PerBankRefreshes,
		PostponedRefreshes: res.Dev.PostponedRefreshes,
		PulledInRefreshes:  res.Dev.PulledInRefreshes,
		LowPowerResidency:  res.LowPowerResidency(),
		SelfRefResidency:   res.SelfRefreshResidency(),

		Alerts:           res.Ctrl.Alerts,
		AlertStallCycles: res.Ctrl.AlertStallCycles,
		RFMs:             res.Dev.RFMs,
		RowSpills:        res.Dev.RowSpills,
	}
	if res.Cal.Name != "" && res.Cal.Name != "none" {
		band := res.PowerBandMW()
		rep.PowerCal = res.Cal.Name
		rep.PowerBandMW = &[3]float64{band.Min, band.Nom, band.Max}
	}
	if res.Ctrl.ReadLatHist.N > 0 || res.Ctrl.WriteLatHist.N > 0 {
		rep.ReadLatShares = make(map[string]float64, int(pradram.NumLatComponents))
		rep.WriteLatShares = make(map[string]float64, int(pradram.NumLatComponents))
		for c := pradram.LatComponent(0); c < pradram.NumLatComponents; c++ {
			rep.ReadLatShares[c.String()] = res.ReadLatShare(c)
			rep.WriteLatShares[c.String()] = res.WriteLatShare(c)
		}
		rep.ReadLatPctNs = map[string]float64{
			"p50":  res.ReadLatQuantileNs(0.50),
			"p95":  res.ReadLatQuantileNs(0.95),
			"p99":  res.ReadLatQuantileNs(0.99),
			"p999": res.ReadLatQuantileNs(0.999),
		}
		rep.WriteLatPctNs = map[string]float64{
			"p50":  res.WriteLatQuantileNs(0.50),
			"p95":  res.WriteLatQuantileNs(0.95),
			"p99":  res.WriteLatQuantileNs(0.99),
			"p999": res.WriteLatQuantileNs(0.999),
		}
	}
	for g := 1; g <= 8; g++ {
		rep.GranShares = append(rep.GranShares, res.GranularityShare(g))
	}
	for c := power.Component(0); c < power.NumComponents; c++ {
		rep.EnergyPJ[c.String()] = res.Energy[c]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prasim:", err)
	os.Exit(1)
}

// Command prasim runs workloads on one DRAM scheme and prints the
// measured statistics: performance, row-buffer behaviour, activation
// granularity, and the DRAM power/energy breakdown.
//
// Usage:
//
//	prasim -workload GUPS -scheme pra
//	prasim -workload MIX2 -scheme halfdram+pra -policy restricted
//	prasim -workload libquantum -scheme baseline -instr 2000000 -dbi
//	prasim -workload GUPS,em3d,MIX2 -j 3       # parallel fan-out
//
// -workload accepts a comma-separated list; the runs execute across a
// -j-sized worker pool and the reports print in the order given, so the
// output is identical for every -j (each run is deterministic and
// independent). With -json, one JSON document is emitted per workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"pradram"
	"pradram/internal/power"
	"pradram/internal/stats"
)

func main() {
	var (
		workloadName = flag.String("workload", "GUPS", "benchmark or MIXn (comma-separated for a batch; see -list)")
		schemeName   = flag.String("scheme", "baseline", "baseline | fga | halfdram | pra | halfdram+pra")
		policyName   = flag.String("policy", "relaxed", "relaxed | restricted")
		dbi          = flag.Bool("dbi", false, "enable Dirty-Block-Index proactive writeback")
		instr        = flag.Int64("instr", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 400_000, "warmup instructions per core")
		cores        = flag.Int("cores", 4, "active cores")
		seed         = flag.Uint64("seed", 1, "workload seed")
		list         = flag.Bool("list", false, "list workloads and exit")
		asJSON       = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		ecc          = flag.Bool("ecc", false, "model an x72 ECC DIMM (Section 4.2)")
		workers      = flag.Int("j", runtime.NumCPU(), "max simulations in flight for workload batches")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", pradram.Workloads())
		fmt.Println("mixes:     ", pradram.Mixes())
		return
	}

	scheme, err := pradram.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	policy, err := pradram.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}

	names := strings.Split(*workloadName, ",")
	configs := make([]pradram.Config, len(names))
	for i, name := range names {
		cfg := pradram.DefaultConfig(strings.TrimSpace(name))
		cfg.Scheme = scheme
		cfg.Policy = policy
		cfg.DBI = *dbi
		cfg.ECC = *ecc
		cfg.InstrPerCore = *instr
		cfg.WarmupPerCore = *warmup
		cfg.ActiveCores = *cores
		cfg.Seed = *seed
		configs[i] = cfg
	}

	// Fan the independent runs out across the pool; reports still print
	// in the order the workloads were given.
	results := make([]pradram.Result, len(configs))
	errs := make([]error, len(configs))
	pool := *workers
	if pool < 1 {
		pool = 1
	}
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i := range configs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = pradram.Run(configs[i])
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if errs[i] != nil {
			fatal(errs[i])
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, res); err != nil {
				fatal(err)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		report(os.Stdout, res)
	}
}

// report renders the human-readable tables for one run.
func report(w io.Writer, res pradram.Result) {
	fmt.Fprintf(w, "workload %s  scheme %s  policy %s  dbi %v\n", res.Workload, res.Scheme, res.Policy, res.DBI)
	fmt.Fprintf(w, "apps: %v\n\n", res.Apps)

	perf := stats.NewTable("core", "app", "IPC")
	for i, ipc := range res.CoreIPC {
		perf.Row(i, res.Apps[i], ipc)
	}
	fmt.Fprintln(w, perf.String())

	fmt.Fprintf(w, "cycles %d  runtime %.1f us  sum-IPC %.3f\n\n", res.Cycles, res.RuntimeNs()/1000, res.SumIPC())

	mem := stats.NewTable("metric", "value")
	mem.Row("DRAM reads", res.Ctrl.ReadsServed)
	mem.Row("DRAM writes", res.Ctrl.WritesServed)
	mem.Row("row hit rate (read)", fmt.Sprintf("%.1f%%", 100*res.RowHitRateRead()))
	mem.Row("row hit rate (write)", fmt.Sprintf("%.1f%%", 100*res.RowHitRateWrite()))
	mem.Row("false hits (read)", fmt.Sprintf("%.2f%%", 100*res.FalseHitRateRead()))
	mem.Row("false hits (write)", fmt.Sprintf("%.2f%%", 100*res.FalseHitRateWrite()))
	mem.Row("avg read latency", fmt.Sprintf("%.1f ns", res.AvgReadLatencyNs()))
	mem.Row("activations", res.Dev.Activations())
	mem.Row("avg act granularity", fmt.Sprintf("%.2f/8", res.Dev.AvgGranularity()))
	mem.Row("write words on bus", fmt.Sprintf("%d of %d", res.Dev.WordsWritten, res.Dev.WordBudget))
	mem.Row("refreshes", res.Dev.Refreshes)
	fmt.Fprintln(w, mem.String())

	gran := stats.NewTable("granularity", "share")
	for g := 1; g <= 8; g++ {
		gran.Row(fmt.Sprintf("%d/8", g), fmt.Sprintf("%.2f%%", 100*res.GranularityShare(g)))
	}
	fmt.Fprintln(w, gran.String())

	pw := stats.NewTable("component", "energy uJ", "share")
	tot := res.Energy.Total()
	for c := power.Component(0); c < power.NumComponents; c++ {
		pw.Row(c.String(), res.Energy[c]/1e6, fmt.Sprintf("%.1f%%", 100*stats.Ratio(res.Energy[c], tot)))
	}
	pw.Row("TOTAL", tot/1e6, "100%")
	fmt.Fprintln(w, pw.String())
	fmt.Fprintf(w, "avg DRAM power %.1f mW   EDP %.3g pJ*ns\n", res.AvgPowerMW(), res.EDP())
}

// jsonReport is the machine-readable output shape of -json.
type jsonReport struct {
	Workload string    `json:"workload"`
	Scheme   string    `json:"scheme"`
	Policy   string    `json:"policy"`
	DBI      bool      `json:"dbi"`
	Apps     []string  `json:"apps"`
	Cycles   int64     `json:"cycles"`
	CoreIPC  []float64 `json:"core_ipc"`
	SumIPC   float64   `json:"sum_ipc"`

	Reads         int64   `json:"dram_reads"`
	Writes        int64   `json:"dram_writes"`
	RowHitRead    float64 `json:"row_hit_read"`
	RowHitWrite   float64 `json:"row_hit_write"`
	FalseHitRead  float64 `json:"false_hit_read"`
	FalseHitWrite float64 `json:"false_hit_write"`
	AvgReadNs     float64 `json:"avg_read_latency_ns"`

	Activations    int64     `json:"activations"`
	AvgGranularity float64   `json:"avg_act_granularity"`
	GranShares     []float64 `json:"act_granularity_shares"`

	EnergyPJ   map[string]float64 `json:"energy_pj"`
	AvgPowerMW float64            `json:"avg_power_mw"`
	EDP        float64            `json:"edp_pj_ns"`
}

func emitJSON(w io.Writer, res pradram.Result) error {
	rep := jsonReport{
		Workload: res.Workload,
		Scheme:   res.Scheme.String(),
		Policy:   res.Policy.String(),
		DBI:      res.DBI,
		Apps:     res.Apps,
		Cycles:   res.Cycles,
		CoreIPC:  res.CoreIPC,
		SumIPC:   res.SumIPC(),

		Reads:         res.Ctrl.ReadsServed,
		Writes:        res.Ctrl.WritesServed,
		RowHitRead:    res.RowHitRateRead(),
		RowHitWrite:   res.RowHitRateWrite(),
		FalseHitRead:  res.FalseHitRateRead(),
		FalseHitWrite: res.FalseHitRateWrite(),
		AvgReadNs:     res.AvgReadLatencyNs(),

		Activations:    res.Dev.Activations(),
		AvgGranularity: res.Dev.AvgGranularity(),

		EnergyPJ:   make(map[string]float64, int(power.NumComponents)),
		AvgPowerMW: res.AvgPowerMW(),
		EDP:        res.EDP(),
	}
	for g := 1; g <= 8; g++ {
		rep.GranShares = append(rep.GranShares, res.GranularityShare(g))
	}
	for c := power.Component(0); c < power.NumComponents; c++ {
		rep.EnergyPJ[c.String()] = res.Energy[c]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prasim:", err)
	os.Exit(1)
}

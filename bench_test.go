package pradram_test

import (
	"testing"

	"pradram"
)

// Each paper table/figure has a bench that regenerates it on a reduced
// budget (the praexp command runs the full-budget versions). The
// experiment runner memoizes simulation results, so iterations beyond the
// first are nearly free and the reported ns/op reflects one full
// regeneration.
func benchExperiment(b *testing.B, id string, instr, warmup int64) {
	b.Helper()
	runner := pradram.NewRunner(pradram.ExpOptions{Instr: instr, Warmup: warmup, Seed: 1})
	exp, err := pradram.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(runner)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// benchBudget is the per-core instruction budget for bench-mode
// experiments: large enough for the shapes to emerge, small enough that
// the full bench suite stays in CI territory.
const (
	benchInstr  = 40_000
	benchWarmup = 80_000
)

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", benchInstr, benchWarmup) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", benchInstr, benchWarmup) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", benchInstr, benchWarmup) }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2", benchInstr, benchWarmup) }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3", benchInstr, benchWarmup) }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9", benchInstr, benchWarmup) }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10", benchInstr, benchWarmup) }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11", benchInstr, benchWarmup) }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12", benchInstr, benchWarmup) }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13", benchInstr, benchWarmup) }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14", benchInstr, benchWarmup) }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15", benchInstr, benchWarmup) }

func BenchmarkSec3Coverage(b *testing.B) { benchExperiment(b, "sec3cov", benchInstr, benchWarmup) }
func BenchmarkAblation(b *testing.B)     { benchExperiment(b, "ablation", benchInstr, benchWarmup) }

// BenchmarkSimThroughput measures raw simulator speed: simulated
// instructions per wall second for the 4-core GUPS baseline.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := pradram.DefaultConfig("GUPS")
		cfg.InstrPerCore = 50_000
		res, err := pradram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "cycles/run")
	}
	b.ReportMetric(float64(b.N*4*50_000), "instructions")
}

// BenchmarkSchemes reports per-scheme simulation cost on one mix.
func BenchmarkSchemes(b *testing.B) {
	for _, s := range []pradram.Scheme{pradram.Baseline, pradram.PRA, pradram.HalfDRAMPRA} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := pradram.DefaultConfig("MIX1")
				cfg.Scheme = s
				cfg.InstrPerCore = 40_000
				if _, err := pradram.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package pradram_test

import (
	"testing"

	"pradram"
)

func TestPublicAPISmoke(t *testing.T) {
	cfg := pradram.DefaultConfig("GUPS")
	cfg.InstrPerCore = 40_000
	cfg.Scheme = pradram.PRA
	res, err := pradram.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerMW() <= 0 {
		t.Error("power must be positive")
	}
	if res.Dev.AvgGranularity() >= 8 {
		t.Error("PRA must reduce granularity on GUPS")
	}
}

func TestPublicAPIListings(t *testing.T) {
	if len(pradram.Workloads()) != 8 {
		t.Errorf("workloads = %v, want 8", pradram.Workloads())
	}
	if len(pradram.Mixes()) != 6 {
		t.Errorf("mixes = %v, want 6", pradram.Mixes())
	}
	if len(pradram.WorkloadSets()) != 21 {
		t.Errorf("sets = %v, want 21", pradram.WorkloadSets())
	}
	if len(pradram.Hammers()) != 4 {
		t.Errorf("hammers = %v, want 4", pradram.Hammers())
	}
	if len(pradram.Tensors()) != 3 {
		t.Errorf("tensors = %v, want 3", pradram.Tensors())
	}
	if len(pradram.Experiments()) != 22 {
		t.Errorf("experiments = %d, want 22", len(pradram.Experiments()))
	}
}

func TestPublicParsers(t *testing.T) {
	s, err := pradram.ParseScheme("pra")
	if err != nil || s != pradram.PRA {
		t.Errorf("ParseScheme(pra) = %v, %v", s, err)
	}
	p, err := pradram.ParsePolicy("restricted")
	if err != nil || p != pradram.RestrictedClose {
		t.Errorf("ParsePolicy(restricted) = %v, %v", p, err)
	}
}

func TestPublicSystemConstruction(t *testing.T) {
	cfg := pradram.DefaultConfig("MIX1")
	cfg.InstrPerCore = 1000
	sys, err := pradram.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
	if _, err := pradram.NewSystem(pradram.DefaultConfig("nope")); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestAnalyticExperimentThroughFacade(t *testing.T) {
	e, err := pradram.ExperimentByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(pradram.NewRunner(pradram.DefaultExpOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("experiment output empty")
	}
	if _, err := pradram.ExperimentByID("nosuch"); err == nil {
		t.Error("unknown experiment must fail")
	}
}
